// Generator and estimator relations. The paper's ICDB stores more than
// static implementations: component *generators* are procedures that emit
// an implementation on demand for a parameter point, and *estimators*
// predict an implementation's area/delay as a function of its parameters
// instead of a flat scalar. This file implements both relations on the
// relational store plus the evaluation machinery the query engine uses
// to rank candidates at a width point (see AtWidth in query.go).
package icdb

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"icdb/internal/genus"
	"icdb/internal/iif"
	"icdb/internal/relstore"
)

// Generator is one row of the generators relation: a parameterized
// procedure that synthesizes a concrete Impl for a parameter point (see
// Generate). Source is IIF text whose NAME equals the generator name and
// whose PARAMETER list equals Params; AreaExpr and DelayExpr are
// estimator expressions evaluated over the parameter bindings (plus
// width, width_min, width_max, and stages) to produce the generated
// implementation's cost estimates. Params must include "size", the GENUS
// width-parameter convention, so every generated implementation has a
// definite width.
type Generator struct {
	Name      string
	Component genus.ComponentType
	Style     string
	Functions []genus.Function
	WidthMin  int
	WidthMax  int
	Stages    int
	Params    []string
	AreaExpr  string
	DelayExpr string
	Source    string
}

// Clone returns a caller-owned copy of g with freshly allocated slices.
func (g *Generator) Clone() Generator {
	out := *g
	out.Functions = append([]genus.Function(nil), g.Functions...)
	out.Params = append([]string(nil), g.Params...)
	return out
}

// Executes reports whether the generator's function set contains fn.
func (g *Generator) Executes(fn genus.Function) bool {
	for _, f := range g.Functions {
		if f == fn {
			return true
		}
	}
	return false
}

func genRow(g Generator) relstore.Row {
	return relstore.Row{
		"name":       g.Name,
		"component":  string(g.Component),
		"style":      g.Style,
		"functions":  genus.FunctionSetKey(g.Functions),
		"width_min":  g.WidthMin,
		"width_max":  g.WidthMax,
		"stages":     g.Stages,
		"params":     strings.Join(g.Params, ","),
		"area_expr":  g.AreaExpr,
		"delay_expr": g.DelayExpr,
		"source":     g.Source,
	}
}

func rowGen(r relstore.Row) Generator {
	g := Generator{
		Name:      asString(r["name"]),
		Component: genus.ComponentType(asString(r["component"])),
		Style:     asString(r["style"]),
		WidthMin:  asInt(r["width_min"]),
		WidthMax:  asInt(r["width_max"]),
		Stages:    asInt(r["stages"]),
		AreaExpr:  asString(r["area_expr"]),
		DelayExpr: asString(r["delay_expr"]),
		Source:    asString(r["source"]),
	}
	if fs := asString(r["functions"]); fs != "" {
		for _, f := range strings.Split(fs, ",") {
			g.Functions = append(g.Functions, genus.Function(f))
		}
	}
	if ps := asString(r["params"]); ps != "" {
		g.Params = strings.Split(ps, ",")
	}
	return g
}

// RegisterGenerator validates and upserts a generator row. The IIF
// source must parse with NAME equal to the generator name and a
// PARAMETER list matching Params (which must include "size"), the
// declared functions must be a non-empty subset of the component type's
// GENUS function set, and both estimator expressions must parse.
func (db *DB) RegisterGenerator(g Generator) error {
	if g.Name == "" {
		return fmt.Errorf("icdb: generator has no name")
	}
	ct, ok := genus.NormalizeComponentType(string(g.Component))
	if !ok {
		return fmt.Errorf("icdb: generator %s: unknown component type %q", g.Name, g.Component)
	}
	if len(g.Functions) == 0 {
		return fmt.Errorf("icdb: generator %s: executes no functions", g.Name)
	}
	allowed := make(map[genus.Function]bool)
	for _, f := range genus.Functions(ct) {
		allowed[f] = true
	}
	for _, f := range g.Functions {
		if !allowed[f] {
			return fmt.Errorf("icdb: generator %s: function %s not executable by component type %s", g.Name, f, ct)
		}
	}
	if g.WidthMin < 1 || g.WidthMax < g.WidthMin {
		return fmt.Errorf("icdb: generator %s: bad width range [%d,%d]", g.Name, g.WidthMin, g.WidthMax)
	}
	hasSize := false
	for _, p := range g.Params {
		if p == "size" {
			hasSize = true
		}
	}
	if !hasSize {
		return fmt.Errorf("icdb: generator %s: PARAMETER list %v lacks the \"size\" width parameter", g.Name, g.Params)
	}
	for attr, expr := range map[string]string{"area": g.AreaExpr, "delay": g.DelayExpr} {
		if strings.TrimSpace(expr) == "" {
			return fmt.Errorf("icdb: generator %s: empty %s estimator expression", g.Name, attr)
		}
		if _, err := iif.ParseExpr(expr); err != nil {
			return fmt.Errorf("icdb: generator %s: bad %s estimator %q: %w", g.Name, attr, expr, err)
		}
	}
	d, err := iif.Parse(g.Source)
	if err != nil {
		return fmt.Errorf("icdb: generator %s: bad IIF source: %w", g.Name, err)
	}
	if d.Name != g.Name {
		return fmt.Errorf("icdb: generator %q has IIF NAME %q; they must match", g.Name, d.Name)
	}
	if !sameNameSet(d.Params, g.Params) {
		return fmt.Errorf("icdb: generator %s: PARAMETER list %v does not match declared params %v", g.Name, d.Params, g.Params)
	}
	g.Component = ct
	return db.store.Upsert(TableGenerators, genRow(g))
}

// GeneratorByName fetches one generator by its exact name (a keyed point
// lookup, never a scan).
func (db *DB) GeneratorByName(name string) (Generator, error) {
	row, err := db.store.Get(TableGenerators, name)
	if err != nil {
		return Generator{}, fmt.Errorf("icdb: generator %q: %w", name, err)
	}
	return rowGen(row), nil
}

// Generators returns every registered generator, sorted by name.
func (db *DB) Generators() ([]Generator, error) {
	var out []Generator
	for r, err := range db.store.Rows(TableGenerators, nil) {
		if err != nil {
			return nil, err
		}
		out = append(out, rowGen(r))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// GeneratorsByComponent returns the generators of one component type,
// sorted by name. The lookup is served from the generators relation's
// secondary index on the component column.
func (db *DB) GeneratorsByComponent(ct genus.ComponentType) ([]Generator, error) {
	nct, ok := genus.NormalizeComponentType(string(ct))
	if !ok {
		return nil, fmt.Errorf("icdb: unknown component type %q", ct)
	}
	rows, err := db.store.Select(TableGenerators, relstore.Eq("component", string(nct)))
	if err != nil {
		return nil, err
	}
	out := make([]Generator, 0, len(rows))
	for _, r := range rows {
		out = append(out, rowGen(r))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// GeneratedImplName derives the implementation name Generate registers
// for a generator at a parameter point: the generator name followed by
// the sorted bindings, joined identifier-safely ("gen_cnt_size_16" for
// size=16). The underscore between a parameter name and its value keeps
// the encoding injective — parameter names cannot start with a digit,
// so distinct binding points never collide onto one name (a bare
// concatenation would map {a:12, a1:3} and {a:13, a1:2} to the same
// string). Deterministic, so repeated generations at one point collide
// onto one implementation by construction.
func GeneratedImplName(gen string, params map[string]int) string {
	parts := make([]string, 0, len(params))
	for k, v := range params {
		parts = append(parts, k+"_"+strconv.Itoa(v))
	}
	sort.Strings(parts)
	return gen + "_" + strings.Join(parts, "_")
}

// generatorEnv builds the attribute environment the generator's
// estimator expressions are evaluated against: the generator's width
// metadata plus every parameter binding by name, with "width" aliasing
// the bound size.
func (g *Generator) generatorEnv(params map[string]int) Attrs {
	a := Attrs{
		"width_min": float64(g.WidthMin),
		"width_max": float64(g.WidthMax),
		"stages":    float64(g.Stages),
	}
	for k, v := range params {
		a[k] = float64(v)
	}
	a["width"] = a["size"]
	return a
}

// GeneratorCost evaluates a generator's estimator expressions at a full
// parameter point (which must bind "size") and returns the predicted
// area, delay, and weighted cost of the implementation Generate would
// emit there. It is the ranking primitive for choosing among generators.
func (db *DB) GeneratorCost(g Generator, params map[string]int) (area, delay, cost float64, err error) {
	if _, ok := params["size"]; !ok {
		return 0, 0, 0, fmt.Errorf("icdb: generator %s: cost needs a size binding", g.Name)
	}
	env := g.generatorEnv(params)
	for attr, expr := range map[string]string{"area": g.AreaExpr, "delay": g.DelayExpr} {
		e, perr := iif.ParseExpr(expr)
		if perr != nil {
			return 0, 0, 0, fmt.Errorf("icdb: generator %s: bad %s estimator %q: %w", g.Name, attr, expr, perr)
		}
		v, verr := evalAttr(e, env)
		if verr != nil {
			return 0, 0, 0, fmt.Errorf("icdb: generator %s: %s estimator: %w", g.Name, attr, verr)
		}
		if attr == "area" {
			area = v
		} else {
			delay = v
		}
	}
	wa, wd := db.rankWeights()
	return area, delay, area*wa + delay*wd, nil
}

// genNamePat matches the "NAME: <generator>;" header of a generator's
// IIF source, so Generate can rename the emitted implementation.
func genNamePat(name string) *regexp.Regexp {
	return regexp.MustCompile(`(?i)NAME\s*:\s*` + regexp.QuoteMeta(name) + `\s*;`)
}

// Generate runs a generator at a parameter point: it synthesizes a
// concrete implementation named GeneratedImplName(name, params), with
// the width range pinned to the bound size, scalar area/delay estimates
// evaluated from the generator's estimator expressions at the point, and
// the generator's IIF source re-headed under the new name. The emitted
// implementation is registered through RegisterImpl — immediately
// queryable, expandable, and persisted like any hand-written row — and
// carries the generator's estimator expressions in the estimators
// relation. Generating the same point twice reuses the registered
// implementation (reused is true).
func (db *DB) Generate(name string, params map[string]int) (im Impl, reused bool, err error) {
	g, err := db.GeneratorByName(name)
	if err != nil {
		return Impl{}, false, err
	}
	if len(params) != len(g.Params) {
		return Impl{}, false, fmt.Errorf("icdb: generator %s: got %d binding(s), want parameters %v", g.Name, len(params), g.Params)
	}
	for _, p := range g.Params {
		v, ok := params[p]
		if !ok {
			return Impl{}, false, fmt.Errorf("icdb: generator %s: missing binding for parameter %q", g.Name, p)
		}
		if v < 0 {
			return Impl{}, false, fmt.Errorf("icdb: generator %s: parameter %s=%d must be non-negative", g.Name, p, v)
		}
	}
	size := params["size"]
	if size < g.WidthMin || size > g.WidthMax {
		return Impl{}, false, fmt.Errorf("icdb: generator %s: size %d outside generator width range [%d,%d]",
			g.Name, size, g.WidthMin, g.WidthMax)
	}
	implName := GeneratedImplName(g.Name, params)
	if existing, err := db.ImplByName(implName); err == nil {
		// Reuse is still an evaluation of the design point: make sure it
		// is on record (a value-equal no-op when the first Generate at
		// this point already recorded it).
		if err := db.RecordExploration(Exploration{
			Generator: g.Name,
			Bindings:  BindingsKey(params),
			Component: g.Component,
			Width:     size,
			Area:      existing.Area,
			Delay:     existing.Delay,
		}); err != nil {
			return Impl{}, false, err
		}
		return existing, true, nil
	}
	area, delay, _, err := db.GeneratorCost(g, params)
	if err != nil {
		return Impl{}, false, err
	}
	pat := genNamePat(g.Name)
	loc := pat.FindStringIndex(g.Source)
	if loc == nil {
		return Impl{}, false, fmt.Errorf("icdb: generator %s: cannot locate NAME header in IIF source", g.Name)
	}
	src := g.Source[:loc[0]] + "NAME: " + implName + ";" + g.Source[loc[1]:]
	im = Impl{
		Name:      implName,
		Component: g.Component,
		Style:     g.Style,
		Functions: append([]genus.Function(nil), g.Functions...),
		WidthMin:  size,
		WidthMax:  size,
		Stages:    g.Stages,
		Area:      area,
		Delay:     delay,
		Params:    append([]string(nil), g.Params...),
		Source:    src,
	}
	if err := db.RegisterImpl(im); err != nil {
		return Impl{}, false, fmt.Errorf("icdb: generate %s: %w", g.Name, err)
	}
	// Attach the generator's estimators so the generated implementation
	// stays width-aware under AtWidth queries and estimate commands.
	if err := db.RegisterEstimator(implName, "area", g.AreaExpr); err != nil {
		return Impl{}, false, err
	}
	if err := db.RegisterEstimator(implName, "delay", g.DelayExpr); err != nil {
		return Impl{}, false, err
	}
	// Every generated implementation is a design point of its generator's
	// space; record it so Pareto queries see it without a separate sweep.
	if err := db.RecordExploration(Exploration{
		Generator: g.Name,
		Bindings:  BindingsKey(params),
		Component: g.Component,
		Width:     size,
		Area:      area,
		Delay:     delay,
	}); err != nil {
		return Impl{}, false, err
	}
	return im, false, nil
}

// EstimatorAttrs returns the attribute names an estimator expression may
// be registered for.
func EstimatorAttrs() []string { return []string{"area", "delay"} }

// RegisterEstimator validates and upserts one estimator row: an IIF
// expression predicting attr ("area" or "delay") for implementation
// implName. The expression is evaluated over the implementation's scalar
// attributes plus "width" — the query's evaluation point (see AtWidth) —
// so "area * width" scales the per-bit estimate, and a bare "area" or
// constant is the degenerate scalar-compatible case.
func (db *DB) RegisterEstimator(implName, attr, expr string) error {
	ok := false
	for _, a := range EstimatorAttrs() {
		if a == attr {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("icdb: unknown estimator attribute %q (have %s)", attr, strings.Join(EstimatorAttrs(), ", "))
	}
	e, err := iif.ParseExpr(expr)
	if err != nil {
		return fmt.Errorf("icdb: estimator %s(%s): bad expression %q: %w", attr, implName, expr, err)
	}
	if _, err := db.ImplByName(implName); err != nil {
		return fmt.Errorf("icdb: estimator %s(%s): %w", attr, implName, err)
	}
	if err := db.store.Upsert(TableEstimators, relstore.Row{
		"impl": implName, "attr": attr, "expr": expr,
	}); err != nil {
		return err
	}
	db.noteEstimator(implName, attr, e)
	return nil
}

// Estimators returns the estimator expressions registered for one
// implementation, as attr -> expression source. The lookup is served
// from the estimators relation's secondary index on the impl column.
func (db *DB) Estimators(implName string) (map[string]string, error) {
	rows, err := db.store.Select(TableEstimators, relstore.Eq("impl", implName))
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(rows))
	for _, r := range rows {
		out[asString(r["attr"])] = asString(r["expr"])
	}
	return out, nil
}

// EstimateImpl evaluates implementation name's cost estimates at a width
// point: area and delay come from the registered estimator expressions
// (falling back to the stored scalars when none is registered), and cost
// is the weighted score queries rank by. The width must lie inside the
// implementation's width range.
func (db *DB) EstimateImpl(name string, width int) (area, delay, cost float64, err error) {
	im, err := db.ImplByName(name)
	if err != nil {
		return 0, 0, 0, err
	}
	if width < 1 {
		return 0, 0, 0, fmt.Errorf("icdb: estimate %s: width %d must be at least 1", name, width)
	}
	if width < im.WidthMin || width > im.WidthMax {
		return 0, 0, 0, fmt.Errorf("icdb: estimate %s: width %d outside implementation width range [%d,%d]",
			name, width, im.WidthMin, im.WidthMax)
	}
	wa, wd := db.rankWeights()
	es, err := db.estSnap()
	if err != nil {
		return 0, 0, 0, err
	}
	ev := attrEval{ests: es.ests, width: width}
	a := make(Attrs, 8)
	area, delay, err = ev.fill(&im, a)
	if err != nil {
		return 0, 0, 0, err
	}
	// An estimate is an evaluated design point too: record it under the
	// implementation's name so frontier queries over a component see
	// estimated stored implementations next to generator sweeps.
	if err := db.RecordExploration(Exploration{
		Generator: im.Name,
		Bindings:  BindingsKey(map[string]int{"width": width}),
		Component: im.Component,
		Width:     width,
		Area:      area,
		Delay:     delay,
	}); err != nil {
		return 0, 0, 0, err
	}
	return area, delay, area*wa + delay*wd, nil
}
