// Package genus provides the function and component taxonomy that ICDB
// uses to classify component implementations, mirroring the GENUS generic
// component library the paper depends on [Dutt 88].
//
// A Function is an abstract microarchitecture operation (ADD, INC, STORAGE,
// ...). A ComponentType is the name of a standard microarchitecture
// component (Counter, Register, Adder_Subtractor, ...). Every component
// type declares the set of functions it can execute; synthesis tools query
// by function and ICDB answers with component types and implementations.
package genus

import (
	"fmt"
	"sort"
	"strings"
)

// Function names an abstract operation a microarchitecture component may
// perform. The vocabulary follows Section 2 of Appendix B.
type Function string

// Logic operations.
const (
	FuncAND  Function = "AND"
	FuncOR   Function = "OR"
	FuncNOT  Function = "NOT"
	FuncNAND Function = "NAND"
	FuncNOR  Function = "NOR"
	FuncXOR  Function = "XOR"
	FuncXNOR Function = "XNOR"
)

// Arithmetic operations.
const (
	FuncADD Function = "ADD"
	FuncSUB Function = "SUB"
	FuncMUL Function = "MUL"
	FuncDIV Function = "DIV"
	FuncINC Function = "INC"
	FuncDEC Function = "DEC"
)

// Relational operations.
const (
	FuncEQ  Function = "EQ"
	FuncNEQ Function = "NEQ"
	FuncGT  Function = "GT"
	FuncGE  Function = "GE"
	FuncLT  Function = "LT"
	FuncLE  Function = "LE"
)

// Select operations.
const (
	// FuncMuxSCL selects by control line.
	FuncMuxSCL Function = "MUX_SCL"
	// FuncMuxSCG selects by guard value.
	FuncMuxSCG Function = "MUX_SCG"
)

// Shift operations.
const (
	FuncSHL1  Function = "SHL1"
	FuncSHR1  Function = "SHR1"
	FuncROTL1 Function = "ROTL1"
	FuncROTR1 Function = "ROTR1"
	FuncASHL1 Function = "ASHL1"
	FuncASHR1 Function = "ASHR1"
	FuncSHL   Function = "SHL"
	FuncSHR   Function = "SHR"
	FuncROTL  Function = "ROTL"
	FuncROTR  Function = "ROTR"
	FuncASHL  Function = "ASHL"
	FuncASHR  Function = "ASHR"
)

// Coding functions.
const (
	FuncENCODE Function = "ENCODE"
	FuncDECODE Function = "DECODE"
)

// Interface functions.
const (
	FuncBUF      Function = "BUF"
	FuncClkDr    Function = "CLK_DR"
	FuncSchmTgr  Function = "SCHM_TGR"
	FuncTriState Function = "TRI_STATE"
)

// Wire functions.
const (
	FuncPORT   Function = "PORT"
	FuncBUS    Function = "BUS"
	FuncWireOr Function = "WIRE_OR"
)

// Switch-box functions.
const (
	FuncCONCAT  Function = "CONCAT"
	FuncEXTRACT Function = "EXTRACT"
)

// Clocking and delay.
const (
	FuncClkGen Function = "CLK_GEN"
	FuncDELAY  Function = "DELAY"
)

// Memory operations.
const (
	FuncLOAD    Function = "LOAD"
	FuncSTORE   Function = "STORE"
	FuncSTORAGE Function = "STORAGE"
	FuncMEMORY  Function = "MEMORY"
	FuncREAD    Function = "READ"
	FuncWRITE   Function = "WRITE"
	FuncPUSH    Function = "PUSH"
	FuncPOP     Function = "POP"
	FuncCOUNTER Function = "COUNTER"
)

// AllFunctions returns the complete predefined function vocabulary in
// deterministic order.
func AllFunctions() []Function {
	fs := []Function{
		FuncAND, FuncOR, FuncNOT, FuncNAND, FuncNOR, FuncXOR, FuncXNOR,
		FuncADD, FuncSUB, FuncMUL, FuncDIV, FuncINC, FuncDEC,
		FuncEQ, FuncNEQ, FuncGT, FuncGE, FuncLT, FuncLE,
		FuncMuxSCL, FuncMuxSCG,
		FuncSHL1, FuncSHR1, FuncROTL1, FuncROTR1, FuncASHL1, FuncASHR1,
		FuncSHL, FuncSHR, FuncROTL, FuncROTR, FuncASHL, FuncASHR,
		FuncENCODE, FuncDECODE,
		FuncBUF, FuncClkDr, FuncSchmTgr, FuncTriState,
		FuncPORT, FuncBUS, FuncWireOr,
		FuncCONCAT, FuncEXTRACT,
		FuncClkGen, FuncDELAY,
		FuncLOAD, FuncSTORE, FuncSTORAGE, FuncMEMORY, FuncREAD, FuncWRITE,
		FuncPUSH, FuncPOP, FuncCOUNTER,
	}
	return fs
}

var functionSet = func() map[Function]bool {
	m := make(map[Function]bool)
	for _, f := range AllFunctions() {
		m[f] = true
	}
	return m
}()

// IsFunction reports whether name (case-insensitive) is a predefined
// function name.
func IsFunction(name string) bool {
	return functionSet[Function(strings.ToUpper(name))]
}

// NormalizeFunction upper-cases name and validates it against the
// predefined vocabulary.
func NormalizeFunction(name string) (Function, error) {
	f := Function(strings.ToUpper(strings.TrimSpace(name)))
	// Operator aliases used in Appendix B, e.g. ADD(+), INC(++).
	switch f {
	case "+":
		f = FuncADD
	case "-":
		f = FuncSUB
	case "*":
		f = FuncMUL
	case "/":
		f = FuncDIV
	case "++":
		f = FuncINC
	case "--":
		f = FuncDEC
	}
	if !functionSet[f] {
		return "", fmt.Errorf("genus: unknown function %q", name)
	}
	return f, nil
}

// ComponentType names a standard microarchitecture component. The list
// follows Section 2 of Appendix B.
type ComponentType string

// Predefined component types.
const (
	CompLogicUnit       ComponentType = "Logic_unit"
	CompMuxSCL          ComponentType = "Mux_scl"
	CompMuxSCG          ComponentType = "Mux_scg"
	CompDecode          ComponentType = "Decode"
	CompEncode          ComponentType = "Encode"
	CompComparator      ComponentType = "Comparator"
	CompShifter         ComponentType = "Shifter"
	CompBarrelShifter   ComponentType = "Barrel_shifter"
	CompAdderSubtractor ComponentType = "Adder_Subtractor"
	CompALU             ComponentType = "ALU"
	CompMultiplier      ComponentType = "Multiplier"
	CompDivider         ComponentType = "Divider"
	CompRegister        ComponentType = "Register"
	CompCounter         ComponentType = "Counter"
	CompRegisterFile    ComponentType = "Register_file"
	CompStack           ComponentType = "Stack"
	CompMemory          ComponentType = "Memory"
	CompBuffer          ComponentType = "Buffer"
	CompClockDriver     ComponentType = "Clock_driver"
	CompSchmittTrigger  ComponentType = "Schmitt_trigger"
	CompTriState        ComponentType = "Tri_state"
	CompPort            ComponentType = "Port"
	CompBus             ComponentType = "Bus"
	CompWireOr          ComponentType = "Wire_or"
	CompConcat          ComponentType = "Concat"
	CompExtract         ComponentType = "Extract"
	CompClockGenerator  ComponentType = "Clock_generator"
	CompDelay           ComponentType = "Delay"
)

// AllComponentTypes returns the predefined component types in
// deterministic order.
func AllComponentTypes() []ComponentType {
	return []ComponentType{
		CompLogicUnit, CompMuxSCL, CompMuxSCG, CompDecode, CompEncode,
		CompComparator, CompShifter, CompBarrelShifter, CompAdderSubtractor,
		CompALU, CompMultiplier, CompDivider, CompRegister, CompCounter,
		CompRegisterFile, CompStack, CompMemory, CompBuffer, CompClockDriver,
		CompSchmittTrigger, CompTriState, CompPort, CompBus, CompWireOr,
		CompConcat, CompExtract, CompClockGenerator, CompDelay,
	}
}

// componentFunctions maps each predefined component type to the full set
// of functions implementations of that type may execute. Individual
// implementations may execute a subset (e.g. an up-only counter has no
// DEC).
var componentFunctions = map[ComponentType][]Function{
	CompLogicUnit:       {FuncAND, FuncOR, FuncNOT, FuncNAND, FuncNOR, FuncXOR, FuncXNOR},
	CompMuxSCL:          {FuncMuxSCL},
	CompMuxSCG:          {FuncMuxSCG},
	CompDecode:          {FuncDECODE},
	CompEncode:          {FuncENCODE},
	CompComparator:      {FuncEQ, FuncNEQ, FuncGT, FuncGE, FuncLT, FuncLE},
	CompShifter:         {FuncSHL1, FuncSHR1, FuncROTL1, FuncROTR1, FuncASHL1, FuncASHR1},
	CompBarrelShifter:   {FuncSHL, FuncSHR, FuncROTL, FuncROTR, FuncASHL, FuncASHR},
	CompAdderSubtractor: {FuncADD, FuncSUB},
	CompALU:             {FuncADD, FuncSUB, FuncAND, FuncOR, FuncNOT, FuncXOR, FuncINC, FuncDEC},
	CompMultiplier:      {FuncMUL},
	CompDivider:         {FuncDIV},
	CompRegister:        {FuncSTORAGE, FuncLOAD, FuncSTORE},
	CompCounter:         {FuncINC, FuncDEC, FuncCOUNTER, FuncSTORAGE, FuncLOAD, FuncSTORE},
	CompRegisterFile:    {FuncSTORAGE, FuncREAD, FuncWRITE},
	CompStack:           {FuncPUSH, FuncPOP, FuncSTORAGE},
	CompMemory:          {FuncMEMORY, FuncREAD, FuncWRITE, FuncSTORAGE},
	CompBuffer:          {FuncBUF},
	CompClockDriver:     {FuncClkDr},
	CompSchmittTrigger:  {FuncSchmTgr},
	CompTriState:        {FuncTriState},
	CompPort:            {FuncPORT},
	CompBus:             {FuncBUS},
	CompWireOr:          {FuncWireOr},
	CompConcat:          {FuncCONCAT},
	CompExtract:         {FuncEXTRACT},
	CompClockGenerator:  {FuncClkGen},
	CompDelay:           {FuncDELAY},
}

// Functions returns the functions executable by component type ct, or nil
// if ct is not predefined.
func Functions(ct ComponentType) []Function {
	fs := componentFunctions[ct]
	out := make([]Function, len(fs))
	copy(out, fs)
	return out
}

// ComponentsForFunctions returns every predefined component type whose
// function set includes all of fns, in deterministic order. This is the
// two-level function→component hierarchy of §4.1: synthesis tools can
// request components that execute multiple functions and ICDB finds the
// merged components (e.g. COUNTER+STORAGE ⇒ Counter).
func ComponentsForFunctions(fns ...Function) []ComponentType {
	var out []ComponentType
	for _, ct := range AllComponentTypes() {
		has := make(map[Function]bool)
		for _, f := range componentFunctions[ct] {
			has[f] = true
		}
		ok := true
		for _, f := range fns {
			if !has[f] {
				ok = false
				break
			}
		}
		if ok && len(fns) > 0 {
			out = append(out, ct)
		}
	}
	return out
}

// IsComponentType reports whether name is a predefined component type.
// Matching is case-insensitive to be forgiving in CQL commands
// ("counter" ⇒ Counter).
func IsComponentType(name string) bool {
	_, ok := NormalizeComponentType(name)
	return ok
}

// NormalizeComponentType resolves name to a predefined component type,
// case-insensitively.
func NormalizeComponentType(name string) (ComponentType, bool) {
	n := strings.ToLower(strings.TrimSpace(name))
	for _, ct := range AllComponentTypes() {
		if strings.ToLower(string(ct)) == n {
			return ct, true
		}
	}
	return "", false
}

// FunctionArity describes the I/O port shape of a function: how many data
// inputs and outputs it has. Per Appendix B §3, inputs are named I0, I1,
// ... and outputs O0, O1, ....
type FunctionArity struct {
	Inputs  int
	Outputs int
}

var functionArity = map[Function]FunctionArity{
	FuncAND: {2, 1}, FuncOR: {2, 1}, FuncNOT: {1, 1}, FuncNAND: {2, 1},
	FuncNOR: {2, 1}, FuncXOR: {2, 1}, FuncXNOR: {2, 1},
	FuncADD: {3, 2}, FuncSUB: {3, 2}, FuncMUL: {2, 1}, FuncDIV: {2, 2},
	FuncINC: {1, 1}, FuncDEC: {1, 1},
	FuncEQ: {2, 1}, FuncNEQ: {2, 1}, FuncGT: {2, 1}, FuncGE: {2, 1},
	FuncLT: {2, 1}, FuncLE: {2, 1},
	FuncMuxSCL: {2, 1}, FuncMuxSCG: {2, 1},
	FuncENCODE: {1, 1}, FuncDECODE: {1, 1},
	FuncBUF: {1, 1}, FuncClkDr: {1, 1}, FuncSchmTgr: {1, 1}, FuncTriState: {1, 1},
	FuncDELAY: {1, 1},
	FuncSHL1:  {1, 1}, FuncSHR1: {1, 1}, FuncROTL1: {1, 1}, FuncROTR1: {1, 1},
	FuncASHL1: {1, 1}, FuncASHR1: {1, 1},
	FuncSHL: {2, 1}, FuncSHR: {2, 1}, FuncROTL: {2, 1}, FuncROTR: {2, 1},
	FuncASHL: {2, 1}, FuncASHR: {2, 1},
	FuncLOAD: {1, 0}, FuncSTORE: {0, 1}, FuncSTORAGE: {1, 1},
}

// Arity returns the declared I/O arity for f. Functions without a
// registered arity report ok=false.
func Arity(f Function) (FunctionArity, bool) {
	a, ok := functionArity[f]
	return a, ok
}

// PortAlias maps a function's alias port name to its canonical I/O port
// name, e.g. Cin → I2 for ADD. Per Appendix B §3 the predefined aliases
// come from GENUS.
type PortAlias struct {
	Function Function
	Alias    string
	Port     string
}

var portAliases = []PortAlias{
	{FuncADD, "Cin", "I2"},
	{FuncADD, "Cout", "O1"},
	{FuncADD, "Sum", "O0"},
	{FuncSUB, "Bin", "I2"},
	{FuncSUB, "Bout", "O1"},
	{FuncSUB, "Diff", "O0"},
	{FuncEQ, "OEQ", "O0"},
	{FuncNEQ, "ONEQ", "O0"},
	{FuncGT, "OGT", "O0"},
	{FuncLT, "OLT", "O0"},
	{FuncGE, "OGEQ", "O0"},
	{FuncLE, "OLEQ", "O0"},
}

// Aliases returns the alias table for function f.
func Aliases(f Function) []PortAlias {
	var out []PortAlias
	for _, a := range portAliases {
		if a.Function == f {
			out = append(out, a)
		}
	}
	return out
}

// ResolveAlias maps an alias port name for function f to its canonical
// port name; if name is not an alias it is returned unchanged.
func ResolveAlias(f Function, name string) string {
	for _, a := range portAliases {
		if a.Function == f && strings.EqualFold(a.Alias, name) {
			return a.Port
		}
	}
	return name
}

// Attribute names predefined in Appendix B §3.
const (
	AttrSize          = "size"
	AttrInputLatch    = "input_latch"
	AttrOutputLatch   = "output_latch"
	AttrInputType     = "input_type"
	AttrOutputType    = "output_type"
	AttrOutputTriSt   = "output_tri_state"
	AttrType          = "type"   // counter architecture style (ripple/synchronous)
	AttrLoad          = "load"   // asynchronous parallel load option
	AttrEnable        = "enable" // count-enable option
	AttrUpOrDown      = "up_or_down"
	AttrShiftDistance = "shift_distance"
)

// PredefinedAttributes returns the attribute-name vocabulary.
func PredefinedAttributes() []string {
	return []string{
		AttrSize, AttrInputLatch, AttrOutputLatch, AttrInputType,
		AttrOutputType, AttrOutputTriSt, AttrType, AttrLoad, AttrEnable,
		AttrUpOrDown, AttrShiftDistance,
	}
}

// ClockName returns the predefined clock net name for clock index i: "clk"
// when only one clock is used (i < 0), else "clk0", "clk1", ....
func ClockName(i int) string {
	if i < 0 {
		return "clk"
	}
	return fmt.Sprintf("clk%d", i)
}

// ControlName returns the predefined control-line name Ci.
func ControlName(i int) string { return fmt.Sprintf("C%d", i) }

// InputName returns the canonical data-input port name Ii.
func InputName(i int) string { return fmt.Sprintf("I%d", i) }

// OutputName returns the canonical data-output port name Oi.
func OutputName(i int) string { return fmt.Sprintf("O%d", i) }

// FunctionSetKey produces a canonical key for a set of functions, used to
// index merged-function components (order- and case-insensitive).
func FunctionSetKey(fns []Function) string {
	ss := make([]string, len(fns))
	for i, f := range fns {
		ss[i] = strings.ToUpper(string(f))
	}
	sort.Strings(ss)
	return strings.Join(ss, ",")
}
