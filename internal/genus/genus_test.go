package genus

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAllFunctionsUniqueAndValid(t *testing.T) {
	seen := make(map[Function]bool)
	for _, f := range AllFunctions() {
		if seen[f] {
			t.Errorf("duplicate function %q", f)
		}
		seen[f] = true
		if !IsFunction(string(f)) {
			t.Errorf("IsFunction(%q) = false, want true", f)
		}
	}
	if len(seen) < 50 {
		t.Errorf("function vocabulary too small: %d", len(seen))
	}
}

func TestIsFunctionCaseInsensitive(t *testing.T) {
	for _, name := range []string{"add", "Add", "ADD", "inc", "storage", "mux_scl"} {
		if !IsFunction(name) {
			t.Errorf("IsFunction(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"", "FROB", "ADDD"} {
		if IsFunction(name) {
			t.Errorf("IsFunction(%q) = true, want false", name)
		}
	}
}

func TestNormalizeFunctionAliases(t *testing.T) {
	cases := map[string]Function{
		"+": FuncADD, "-": FuncSUB, "*": FuncMUL, "/": FuncDIV,
		"++": FuncINC, "--": FuncDEC, "add": FuncADD, " SUB ": FuncSUB,
	}
	for in, want := range cases {
		got, err := NormalizeFunction(in)
		if err != nil {
			t.Errorf("NormalizeFunction(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("NormalizeFunction(%q) = %q, want %q", in, got, want)
		}
	}
	if _, err := NormalizeFunction("bogus"); err == nil {
		t.Error("NormalizeFunction(bogus): want error")
	}
}

func TestComponentTypesHaveFunctions(t *testing.T) {
	for _, ct := range AllComponentTypes() {
		if len(Functions(ct)) == 0 {
			t.Errorf("component type %q has no functions", ct)
		}
	}
}

func TestCounterExecutesPaperFunctions(t *testing.T) {
	// §4.1: "an updown counter with parallel load and enable performs
	// INCREMENT, DECREMENT, COUNTER, and STORAGE functions."
	fns := Functions(CompCounter)
	want := []Function{FuncINC, FuncDEC, FuncCOUNTER, FuncSTORAGE}
	for _, w := range want {
		found := false
		for _, f := range fns {
			if f == w {
				found = true
			}
		}
		if !found {
			t.Errorf("Counter missing function %q", w)
		}
	}
}

func TestComponentsForFunctionsMerging(t *testing.T) {
	// §4.1: a STORAGE query returns both Register and Counter; a
	// COUNTER+STORAGE query returns only the counter.
	storage := ComponentsForFunctions(FuncSTORAGE)
	hasReg, hasCnt := false, false
	for _, ct := range storage {
		if ct == CompRegister {
			hasReg = true
		}
		if ct == CompCounter {
			hasCnt = true
		}
	}
	if !hasReg || !hasCnt {
		t.Errorf("STORAGE query = %v, want both Register and Counter", storage)
	}

	merged := ComponentsForFunctions(FuncCOUNTER, FuncSTORAGE)
	if len(merged) != 1 || merged[0] != CompCounter {
		t.Errorf("COUNTER+STORAGE query = %v, want [Counter]", merged)
	}
}

func TestComponentsForFunctionsEmpty(t *testing.T) {
	if got := ComponentsForFunctions(); got != nil {
		t.Errorf("empty function query = %v, want nil", got)
	}
}

func TestAddSubComponent(t *testing.T) {
	got := ComponentsForFunctions(FuncADD, FuncSUB)
	wantSome := map[ComponentType]bool{CompAdderSubtractor: true, CompALU: true}
	for _, ct := range got {
		if !wantSome[ct] {
			t.Errorf("ADD+SUB query returned unexpected %q", ct)
		}
		delete(wantSome, ct)
	}
	if len(wantSome) != 0 {
		t.Errorf("ADD+SUB query missing %v", wantSome)
	}
}

func TestNormalizeComponentType(t *testing.T) {
	for _, in := range []string{"counter", "Counter", "COUNTER"} {
		ct, ok := NormalizeComponentType(in)
		if !ok || ct != CompCounter {
			t.Errorf("NormalizeComponentType(%q) = %q,%v", in, ct, ok)
		}
	}
	if _, ok := NormalizeComponentType("widget"); ok {
		t.Error("NormalizeComponentType(widget): want !ok")
	}
	if IsComponentType("widget") {
		t.Error("IsComponentType(widget): want false")
	}
	if !IsComponentType("adder_subtractor") {
		t.Error("IsComponentType(adder_subtractor): want true")
	}
}

func TestArity(t *testing.T) {
	a, ok := Arity(FuncADD)
	if !ok || a.Inputs != 3 || a.Outputs != 2 {
		t.Errorf("Arity(ADD) = %+v,%v", a, ok)
	}
	if _, ok := Arity(FuncMEMORY); ok {
		t.Error("Arity(MEMORY): want !ok (no fixed arity)")
	}
}

func TestResolveAlias(t *testing.T) {
	if got := ResolveAlias(FuncADD, "Cin"); got != "I2" {
		t.Errorf("ResolveAlias(ADD,Cin) = %q, want I2", got)
	}
	if got := ResolveAlias(FuncADD, "cin"); got != "I2" {
		t.Errorf("ResolveAlias(ADD,cin) = %q, want I2 (case-insensitive)", got)
	}
	if got := ResolveAlias(FuncADD, "I0"); got != "I0" {
		t.Errorf("ResolveAlias(ADD,I0) = %q, want I0 (pass-through)", got)
	}
	if got := ResolveAlias(FuncEQ, "OEQ"); got != "O0" {
		t.Errorf("ResolveAlias(EQ,OEQ) = %q, want O0", got)
	}
	if as := Aliases(FuncADD); len(as) != 3 {
		t.Errorf("Aliases(ADD) = %v, want 3 entries", as)
	}
}

func TestNamingHelpers(t *testing.T) {
	if ClockName(-1) != "clk" {
		t.Errorf("ClockName(-1) = %q", ClockName(-1))
	}
	if ClockName(2) != "clk2" {
		t.Errorf("ClockName(2) = %q", ClockName(2))
	}
	if ControlName(0) != "C0" || InputName(1) != "I1" || OutputName(3) != "O3" {
		t.Error("port naming helpers wrong")
	}
}

func TestFunctionSetKeyCanonical(t *testing.T) {
	a := FunctionSetKey([]Function{FuncSTORAGE, FuncCOUNTER})
	b := FunctionSetKey([]Function{FuncCOUNTER, FuncSTORAGE})
	if a != b {
		t.Errorf("FunctionSetKey not order-insensitive: %q vs %q", a, b)
	}
	if !strings.Contains(a, "COUNTER") || !strings.Contains(a, "STORAGE") {
		t.Errorf("FunctionSetKey = %q", a)
	}
}

func TestFunctionSetKeyProperty(t *testing.T) {
	// Property: key is invariant under permutation (here: reversal) and
	// case of inputs.
	f := func(idx []uint8) bool {
		all := AllFunctions()
		var fns []Function
		for _, i := range idx {
			fns = append(fns, all[int(i)%len(all)])
		}
		rev := make([]Function, len(fns))
		for i, fn := range fns {
			rev[len(fns)-1-i] = Function(strings.ToLower(string(fn)))
		}
		return FunctionSetKey(fns) == FunctionSetKey(rev)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredefinedAttributes(t *testing.T) {
	attrs := PredefinedAttributes()
	want := map[string]bool{"size": true, "input_latch": true, "output_tri_state": true}
	for _, a := range attrs {
		delete(want, a)
	}
	if len(want) != 0 {
		t.Errorf("PredefinedAttributes missing %v", want)
	}
}
