package iif

// The shared expression-evaluation core. Two consumers evaluate IIF
// expressions with C semantics over different numeric domains: the
// expander's #for/#if machinery computes ints and lets ++/-- mutate loop
// variables, and the query engine's constraint/estimator evaluation
// computes float64 over an implementation's attributes. Their shared
// structure (literals, references, arithmetic, comparisons, logical
// operators) lives here once, generically; everything domain-specific —
// name resolution, mutation, which operators are in the domain, and the
// exact error wording — stays behind the EvalEnv interface, so each
// caller keeps its historical behavior and error classes.

import "math"

// Num is the numeric domain EvalExpr evaluates over. The int and float64
// instantiations differ where C does: division truncates for ints,
// % is the int remainder vs math.Mod, and ** rejects negative exponents
// for ints (no integer result exists) but maps to math.Pow for floats.
type Num interface{ ~int | ~float64 }

// EvalEnv binds EvalExpr's open ends for one numeric domain T.
type EvalEnv[T Num] interface {
	// Lookup resolves a (possibly indexed) reference to a value.
	Lookup(r *Ref) (T, error)
	// Mutate applies a ++/-- operator to its operand. Environments
	// without mutable state reject it; note the operand arrives unchecked
	// (it need not be a *Ref), so the environment owns that diagnostic.
	Mutate(pos Pos, op UnaryOp, operand Expr) (T, error)
	// BadUnary and BadBinary report an operator outside the evaluation
	// domain (hardware operators like ~b or @ in a C or constraint
	// expression).
	BadUnary(pos Pos, op UnaryOp) error
	BadBinary(pos Pos, op BinaryOp) error
	// BadExpr reports an expression form outside the domain (Async).
	BadExpr(e Expr) error
	// ShortCircuit reports whether && and || may skip their right
	// operand. The expander disables this during speculative folds, where
	// skipping the right side would let a signal reference slip through
	// and make the same source fold or fail depending on parameter
	// values.
	ShortCircuit() bool
}

// EvalExpr evaluates e with C semantics over env's domain: '+' adds,
// '*' multiplies, comparisons and logical operators yield 0/1, and
// ++/-- are delegated to the environment.
func EvalExpr[T Num](e Expr, env EvalEnv[T]) (T, error) {
	switch x := e.(type) {
	case *IntLit:
		return T(x.V), nil

	case *Ref:
		return env.Lookup(x)

	case *Unary:
		switch x.Op {
		case UNeg:
			v, err := EvalExpr(x.X, env)
			return -v, err
		case UNot:
			v, err := EvalExpr(x.X, env)
			if err != nil {
				return 0, err
			}
			return b2n[T](v == 0), nil
		case UPreInc, UPreDec, UPostInc, UPostDec:
			return env.Mutate(x.Pos, x.Op, x.X)
		}
		return 0, env.BadUnary(x.Pos, x.Op)

	case *Binary:
		l, err := EvalExpr(x.X, env)
		if err != nil {
			return 0, err
		}
		// Short-circuit before touching the right side (when the
		// environment allows it).
		if env.ShortCircuit() {
			switch x.Op {
			case BLAnd:
				if l == 0 {
					return 0, nil
				}
			case BLOr:
				if l != 0 {
					return 1, nil
				}
			}
		}
		r, err := EvalExpr(x.Y, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case BOr:
			return l + r, nil
		case BAnd:
			return l * r, nil
		case BMinus:
			return l - r, nil
		case BDiv:
			if r == 0 {
				return 0, Errf(x.Pos, "division by zero")
			}
			return l / r, nil
		case BMod:
			if r == 0 {
				return 0, Errf(x.Pos, "modulo by zero")
			}
			if isFloat[T]() {
				return T(math.Mod(float64(l), float64(r))), nil
			}
			return T(int(l) % int(r)), nil
		case BPow:
			if isFloat[T]() {
				return T(math.Pow(float64(l), float64(r))), nil
			}
			if r < 0 {
				return 0, Errf(x.Pos, "negative exponent %d", int(r))
			}
			out := T(1)
			for i := T(0); i < r; i++ {
				out *= l
			}
			return out, nil
		case BEq:
			return b2n[T](l == r), nil
		case BNeq:
			return b2n[T](l != r), nil
		case BLt:
			return b2n[T](l < r), nil
		case BGt:
			return b2n[T](l > r), nil
		case BLeq:
			return b2n[T](l <= r), nil
		case BGeq:
			return b2n[T](l >= r), nil
		case BLAnd:
			// Reached short-circuited (l != 0 already known) or not; the
			// full form is correct for both.
			return b2n[T](l != 0 && r != 0), nil
		case BLOr:
			return b2n[T](l != 0 || r != 0), nil
		}
		return 0, env.BadBinary(x.Pos, x.Op)
	}
	return 0, env.BadExpr(e)
}

// isFloat discriminates the two Num domains at compile time: integer
// division makes 1/2 vanish, float division does not. Robust against
// named types (~int / ~float64), unlike a dynamic type switch on any(T).
func isFloat[T Num]() bool {
	return T(1)/T(2) != 0
}

func b2n[T Num](b bool) T {
	if b {
		return 1
	}
	return 0
}
