package iif

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Error is an IIF front-end error carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("iif: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

var declKeywords = map[string]Kind{
	"NAME":          KwName,
	"PARAMETER":     KwParameter,
	"VARIABLE":      KwVariable,
	"INORDER":       KwInorder,
	"OUTORDER":      KwOutorder,
	"PIIFVARIABLE":  KwPIIFVariable,
	"SUBFUNCTION":   KwSubfunction,
	"SUBCOMPONENT":  KwSubcomponent,
	"FUNCTIONS":     KwFunctions,
	"C_SUBFUNCTION": KwSubfunction, // treated like SUBFUNCTION declarations
}

var tildeOps = map[byte]Kind{
	'a': AsyncOp, 'b': BufOp, 's': SchmittOp, 'd': DelayOp,
	't': TriOp, 'w': WireOrOp, 'f': FallOp, 'r': RiseOp,
	'h': HighOp, 'l': LowOp,
}

var hashDirectives = map[string]Kind{
	"if":       HashIf,
	"else":     HashElse,
	"for":      HashFor,
	"c_line":   HashCLine,
	"cline":    HashCLine,
	"break":    HashBreak,
	"continue": HashContinue,
}

// lexer tokenizes IIF source text.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole source, returning the token stream terminated by
// an EOF token.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) lexIdent() string {
	start := l.off
	for l.off < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	return l.src[start:l.off]
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		name := l.lexIdent()
		if k, ok := declKeywords[strings.ToUpper(name)]; ok {
			// Declaration keywords are only recognized in upper case to
			// avoid stealing signal names like "name"; the paper writes
			// them upper-case throughout.
			if name == strings.ToUpper(name) {
				return Token{Kind: k, Text: name, Pos: pos}, nil
			}
		}
		return Token{Kind: IDENT, Text: name, Pos: pos}, nil

	case unicode.IsDigit(rune(c)):
		start := l.off
		for l.off < len(l.src) && unicode.IsDigit(rune(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.off]
		v, err := strconv.Atoi(text)
		if err != nil {
			return Token{}, errf(pos, "bad integer %q", text)
		}
		return Token{Kind: INT, Text: text, Int: v, Pos: pos}, nil
	}

	l.advance()
	switch c {
	case ':':
		return Token{Kind: Colon, Pos: pos}, nil
	case ';':
		return Token{Kind: Semicolon, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case '[':
		return Token{Kind: LBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: RBracket, Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '@':
		return Token{Kind: At, Pos: pos}, nil

	case '(':
		// "(+)" is XOR, "(.)" is XNOR; either followed by '=' is the
		// aggregate form. Otherwise a plain left parenthesis.
		if l.peek() == '+' && l.peekAt(1) == ')' {
			l.advance()
			l.advance()
			if l.peek() == '=' && l.peekAt(1) != '=' {
				l.advance()
				return Token{Kind: InsXor, Pos: pos}, nil
			}
			return Token{Kind: Xor, Pos: pos}, nil
		}
		if l.peek() == '.' && l.peekAt(1) == ')' {
			l.advance()
			l.advance()
			if l.peek() == '=' && l.peekAt(1) != '=' {
				l.advance()
				return Token{Kind: InsXnor, Pos: pos}, nil
			}
			return Token{Kind: Xnor, Pos: pos}, nil
		}
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil

	case '+':
		if l.peek() == '+' {
			l.advance()
			return Token{Kind: Inc, Pos: pos}, nil
		}
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: InsAdd, Pos: pos}, nil
		}
		return Token{Kind: Plus, Pos: pos}, nil
	case '-':
		if l.peek() == '-' {
			l.advance()
			return Token{Kind: Dec, Pos: pos}, nil
		}
		return Token{Kind: Minus, Pos: pos}, nil
	case '*':
		if l.peek() == '*' {
			l.advance()
			return Token{Kind: Pow, Pos: pos}, nil
		}
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: InsMul, Pos: pos}, nil
		}
		return Token{Kind: Star, Pos: pos}, nil
	case '/':
		return Token{Kind: Slash, Pos: pos}, nil
	case '%':
		return Token{Kind: Pct, Pos: pos}, nil
	case '!':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: Neq, Pos: pos}, nil
		}
		return Token{Kind: Bang, Pos: pos}, nil
	case '=':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: EqEq, Pos: pos}, nil
		}
		return Token{Kind: Equals, Pos: pos}, nil
	case '<':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: Leq, Pos: pos}, nil
		}
		return Token{Kind: Lt, Pos: pos}, nil
	case '>':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: Geq, Pos: pos}, nil
		}
		return Token{Kind: Gt, Pos: pos}, nil
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: LAnd, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '&' (use '&&' or '*')")
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: LOr, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '|' (use '||' or '+')")

	case '~':
		op := l.peek()
		if k, ok := tildeOps[op]; ok {
			l.advance()
			return Token{Kind: k, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unknown operator '~%c'", op)

	case '#':
		if !isIdentStart(l.peek()) {
			return Token{}, errf(pos, "'#' must be followed by a directive or subfunction name")
		}
		name := l.lexIdent()
		if k, ok := hashDirectives[strings.ToLower(name)]; ok {
			return Token{Kind: k, Text: name, Pos: pos}, nil
		}
		return Token{Kind: HashCall, Text: name, Pos: pos}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(rune(c)))
}
