package iif

import (
	"fmt"
	"strings"
)

// Design is a parsed IIF description: the declaration part followed by the
// design body (Appendix A §2).
type Design struct {
	Name string
	// Params are the PARAMETER variables users supply values for.
	Params []string
	// Vars are C-style VARIABLE names used in parameterized structure.
	Vars []string
	// Inputs, Outputs, Internal declare signals (INORDER, OUTORDER,
	// PIIFVARIABLE). Dims hold C expressions for indexed signals.
	Inputs   []SignalDecl
	Outputs  []SignalDecl
	Internal []SignalDecl
	// SubFunctions lists the IIF subfunction (macro) names the body calls.
	SubFunctions []string
	// SubComponents lists SUBCOMPONENT declarations.
	SubComponents []string
	// Functions records an optional FUNCTIONS declaration (the abstract
	// operations this component executes, as in the SHL0 example).
	Functions []string
	Body      *Block
}

// SignalDecl declares one (possibly indexed) signal. "D[size]" has
// Name "D" and one Dim expression; a plain signal has no Dims.
type SignalDecl struct {
	Name string
	Dims []Expr
	Pos  Pos
}

func (d SignalDecl) String() string {
	var b strings.Builder
	b.WriteString(d.Name)
	for _, e := range d.Dims {
		fmt.Fprintf(&b, "[%s]", ExprString(e))
	}
	return b.String()
}

// Stmt is an IIF statement.
type Stmt interface{ stmtNode() }

// Block is a { ... } sequence of statements.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// AssignOp distinguishes plain assignment from the aggregate forms.
type AssignOp int

// Assignment operators.
const (
	OpAssign  AssignOp = iota // =
	OpAggOr                   // +=
	OpAggAnd                  // *=
	OpAggXor                  // (+)=
	OpAggXnor                 // (.)=
)

func (op AssignOp) String() string {
	switch op {
	case OpAssign:
		return "="
	case OpAggOr:
		return "+="
	case OpAggAnd:
		return "*="
	case OpAggXor:
		return "(+)="
	case OpAggXnor:
		return "(.)="
	}
	return "?="
}

// Assign is "lvalue op expr;". In the body it defines a signal equation;
// under #c_line it updates a C variable.
type Assign struct {
	LHS   *Ref
	Op    AssignOp
	RHS   Expr
	CLine bool // true when introduced by #c_line
	Pos   Pos
}

// If is the "#if (cond) stmt [#else stmt]" decision construct. Cond is a C
// expression over parameters and variables.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Pos  Pos
}

// For is the "#for(init; cond; step) stmt" loop construct.
type For struct {
	Init Expr // assignment or empty (nil)
	Cond Expr
	Step Expr
	Body Stmt
	Pos  Pos
}

// Call is a "#NAME(arg, ...);" subfunction (macro) invocation with
// call-by-name argument passing.
type Call struct {
	Name string
	Args []Expr
	Pos  Pos
}

// Break and Continue are loop control statements.
type Break struct{ Pos Pos }

// Continue resumes the next loop iteration.
type Continue struct{ Pos Pos }

func (*Block) stmtNode()    {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*For) stmtNode()      {}
func (*Call) stmtNode()     {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}

// Expr is an IIF expression node. One AST covers both boolean signal
// expressions and C integer expressions; the expander interprets each node
// according to context (signal reference vs variable reference).
type Expr interface{ exprNode() }

// Ref references a signal or variable, optionally indexed: Q, Q[i], M[i][j].
type Ref struct {
	Name  string
	Index []Expr
	Pos   Pos
}

// IntLit is an integer literal. In boolean context 0/1 are the constants.
type IntLit struct {
	V   int
	Pos Pos
}

// UnaryOp enumerates prefix/postfix unary operators.
type UnaryOp int

// Unary operators.
const (
	UNot     UnaryOp = iota // !
	UNeg                    // - (C)
	UBuf                    // ~b
	USchmitt                // ~s
	URise                   // ~r
	UFall                   // ~f
	UHigh                   // ~h
	ULow                    // ~l
	UPreInc                 // ++x
	UPreDec                 // --x
	UPostInc                // x++
	UPostDec                // x--
)

var unaryNames = map[UnaryOp]string{
	UNot: "!", UNeg: "-", UBuf: "~b", USchmitt: "~s",
	URise: "~r", UFall: "~f", UHigh: "~h", ULow: "~l",
	UPreInc: "++", UPreDec: "--", UPostInc: "++", UPostDec: "--",
}

func (op UnaryOp) String() string { return unaryNames[op] }

// Unary applies a unary operator.
type Unary struct {
	Op  UnaryOp
	X   Expr
	Pos Pos
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	BOr     BinaryOp = iota // + (boolean OR / C add)
	BAnd                    // * (boolean AND / C mul)
	BXor                    // (+)
	BXnor                   // (.)
	BMinus                  // - (C)
	BDiv                    // / (C)
	BMod                    // %
	BPow                    // **
	BAt                     // @  (clocked assignment)
	BDelay                  // ~d
	BTri                    // ~t
	BWireOr                 // ~w
	BEq                     // ==
	BNeq                    // !=
	BLt                     // <
	BGt                     // >
	BLeq                    // <=
	BGeq                    // >=
	BLAnd                   // &&
	BLOr                    // ||
)

var binaryNames = map[BinaryOp]string{
	BOr: "+", BAnd: "*", BXor: "(+)", BXnor: "(.)", BMinus: "-",
	BDiv: "/", BMod: "%", BPow: "**", BAt: "@", BDelay: "~d",
	BTri: "~t", BWireOr: "~w", BEq: "==", BNeq: "!=", BLt: "<",
	BGt: ">", BLeq: "<=", BGeq: ">=", BLAnd: "&&", BLOr: "||",
}

func (op BinaryOp) String() string { return binaryNames[op] }

// Binary applies a binary operator.
type Binary struct {
	Op   BinaryOp
	X, Y Expr
	Pos  Pos
}

// AsyncItem is one "value/condition" rule of an asynchronous set/reset
// list: when Cond evaluates true the flip-flop output is forced to Value.
type AsyncItem struct {
	Value Expr
	Cond  Expr
}

// Async is "X ~a (v0/c0, v1/c1, ...)" — a flip-flop expression X decorated
// with asynchronous set/reset rules.
type Async struct {
	X     Expr
	Items []AsyncItem
	Pos   Pos
}

func (*Ref) exprNode()    {}
func (*IntLit) exprNode() {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}
func (*Async) exprNode()  {}

// ExprString renders an expression in IIF surface syntax (fully
// parenthesized where needed); used for diagnostics and the flat printer.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Ref:
		var b strings.Builder
		b.WriteString(x.Name)
		for _, i := range x.Index {
			fmt.Fprintf(&b, "[%s]", ExprString(i))
		}
		return b.String()
	case *IntLit:
		return fmt.Sprintf("%d", x.V)
	case *Unary:
		switch x.Op {
		case UPostInc:
			return ExprString(x.X) + "++"
		case UPostDec:
			return ExprString(x.X) + "--"
		case UNot:
			return "!" + ExprString(x.X)
		case UNeg, UPreInc, UPreDec:
			// Parenthesized: "a-(- b)" would otherwise print as "a-- b"
			// and re-lex as a postfix decrement.
			return "(" + x.Op.String() + " " + ExprString(x.X) + ")"
		default:
			return x.Op.String() + " " + ExprString(x.X)
		}
	case *Binary:
		return "(" + ExprString(x.X) + x.Op.String() + ExprString(x.Y) + ")"
	case *Async:
		var parts []string
		for _, it := range x.Items {
			parts = append(parts, ExprString(it.Value)+"/"+ExprString(it.Cond))
		}
		return "(" + ExprString(x.X) + " ~a(" + strings.Join(parts, ",") + "))"
	}
	return "?"
}

// ExprPos extracts the source position of an expression. Expressions
// without position information report the zero Pos.
func ExprPos(e Expr) Pos { return exprPos(e) }

// exprPos extracts the source position of an expression.
func exprPos(e Expr) Pos {
	switch x := e.(type) {
	case *Ref:
		return x.Pos
	case *IntLit:
		return x.Pos
	case *Unary:
		return x.Pos
	case *Binary:
		return x.Pos
	case *Async:
		return x.Pos
	}
	return Pos{}
}
