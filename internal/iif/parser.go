package iif

// Parse parses a complete IIF design description.
func Parse(src string) (*Design, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	d, err := p.parseDesign()
	if err != nil {
		return nil, err
	}
	return d, nil
}

// ParseExpr parses a single IIF expression (used by tests and by the CQL
// layer for attribute expressions).
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != EOF {
		return nil, errf(p.cur().Pos, "unexpected %s after expression", p.cur())
	}
	return e, nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token { return p.toks[p.i] }
func (p *parser) peek() Token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() Token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s", k, t)
	}
	return p.advance(), nil
}

func (p *parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

// ---- Declarations ----

func isDeclKeyword(k Kind) bool {
	switch k {
	case KwName, KwParameter, KwVariable, KwInorder, KwOutorder,
		KwPIIFVariable, KwSubfunction, KwSubcomponent, KwFunctions:
		return true
	}
	return false
}

func (p *parser) parseDesign() (*Design, error) {
	d := &Design{}
	for isDeclKeyword(p.cur().Kind) {
		if err := p.parseDecl(d); err != nil {
			return nil, err
		}
	}
	if d.Name == "" {
		return nil, errf(p.cur().Pos, "design has no NAME declaration")
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	d.Body = body
	if p.cur().Kind != EOF {
		return nil, errf(p.cur().Pos, "unexpected %s after design body", p.cur())
	}
	return d, nil
}

// parseDecl parses one declaration line: KEYWORD (:|=) list [;].
// The trailing semicolon is optional so that paper examples written
// without it (e.g. the SHL0 shifter) parse.
func (p *parser) parseDecl(d *Design) error {
	kw := p.advance()
	if p.cur().Kind != Colon && p.cur().Kind != Equals {
		return errf(p.cur().Pos, "expected ':' after %s", kw.Kind)
	}
	p.advance()

	switch kw.Kind {
	case KwName:
		t, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		if d.Name != "" {
			return errf(t.Pos, "duplicate NAME declaration")
		}
		d.Name = t.Text
	case KwParameter, KwVariable, KwSubfunction, KwSubcomponent, KwFunctions:
		names, err := p.parseNameList()
		if err != nil {
			return err
		}
		switch kw.Kind {
		case KwParameter:
			d.Params = append(d.Params, names...)
		case KwVariable:
			d.Vars = append(d.Vars, names...)
		case KwSubfunction:
			d.SubFunctions = append(d.SubFunctions, names...)
		case KwSubcomponent:
			d.SubComponents = append(d.SubComponents, names...)
		case KwFunctions:
			d.Functions = append(d.Functions, names...)
		}
	case KwInorder, KwOutorder, KwPIIFVariable:
		decls, err := p.parseSignalDeclList()
		if err != nil {
			return err
		}
		switch kw.Kind {
		case KwInorder:
			d.Inputs = append(d.Inputs, decls...)
		case KwOutorder:
			d.Outputs = append(d.Outputs, decls...)
		case KwPIIFVariable:
			d.Internal = append(d.Internal, decls...)
		}
	}
	p.accept(Semicolon)
	return nil
}

func (p *parser) parseNameList() ([]string, error) {
	var names []string
	for {
		t, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		names = append(names, t.Text)
		if !p.accept(Comma) {
			return names, nil
		}
	}
}

func (p *parser) parseSignalDeclList() ([]SignalDecl, error) {
	var decls []SignalDecl
	for {
		t, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		sd := SignalDecl{Name: t.Text, Pos: t.Pos}
		for p.cur().Kind == LBracket {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			sd.Dims = append(sd.Dims, e)
		}
		decls = append(decls, sd)
		if !p.accept(Comma) {
			return decls, nil
		}
	}
}

// ---- Statements ----

func (p *parser) parseBlock() (*Block, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // consume }
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case LBrace:
		return p.parseBlock()

	case HashIf:
		p.advance()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &If{Cond: cond, Then: then, Pos: t.Pos}
		if p.cur().Kind == HashElse {
			p.advance()
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil

	case HashFor:
		p.advance()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		st := &For{Pos: t.Pos}
		var err error
		if p.cur().Kind != Semicolon {
			st.Init, err = p.parseSmallExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		if p.cur().Kind != Semicolon {
			st.Cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		if p.cur().Kind != RParen {
			st.Step, err = p.parseSmallExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil

	case HashCLine:
		p.advance()
		a, err := p.parseAssignStmt(true)
		if err != nil {
			return nil, err
		}
		return a, nil

	case HashBreak:
		p.advance()
		p.accept(Semicolon)
		return &Break{Pos: t.Pos}, nil

	case HashContinue:
		p.advance()
		p.accept(Semicolon)
		return &Continue{Pos: t.Pos}, nil

	case HashCall:
		p.advance()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		call := &Call{Name: t.Text, Pos: t.Pos}
		if p.cur().Kind != RParen {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(Comma) {
					break
				}
			}
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		p.accept(Semicolon)
		return call, nil

	case IDENT:
		return p.parseAssignStmt(false)
	}
	return nil, errf(t.Pos, "unexpected %s at start of statement", t)
}

// parseAssignStmt parses "lvalue op expr ;".
func (p *parser) parseAssignStmt(cline bool) (*Assign, error) {
	lhs, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	var op AssignOp
	switch p.cur().Kind {
	case Equals:
		op = OpAssign
	case InsAdd:
		op = OpAggOr
	case InsMul:
		op = OpAggAnd
	case InsXor:
		op = OpAggXor
	case InsXnor:
		op = OpAggXnor
	default:
		return nil, errf(p.cur().Pos, "expected assignment operator, found %s", p.cur())
	}
	pos := p.advance().Pos
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return &Assign{LHS: lhs, Op: op, RHS: rhs, CLine: cline, Pos: pos}, nil
}

// parseSmallExpr parses the init/step expressions of a #for header:
// an assignment "i = e", or an expression such as "i++".
func (p *parser) parseSmallExpr() (Expr, error) {
	if p.cur().Kind == IDENT && p.peek().Kind == Equals {
		lhs, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		pos := p.advance().Pos // '='
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// A #for-header assignment gets the dedicated forAssign node;
		// consumers unpack it with the ForAssign accessor.
		return &forAssign{LHS: lhs, RHS: rhs, P: pos}, nil
	}
	return p.parseExpr()
}

// forAssign is an internal expression node for #for-header assignments.
type forAssign struct {
	LHS *Ref
	RHS Expr
	P   Pos
}

func (*forAssign) exprNode() {}

// ForAssign reports whether e is a #for-header assignment "lhs = rhs"
// and returns its parts. Such nodes appear only in For.Init and For.Step;
// the expander uses this to execute loop headers without exposing the
// internal node type.
func ForAssign(e Expr) (lhs *Ref, rhs Expr, ok bool) {
	fa, isFA := e.(*forAssign)
	if !isFA {
		return nil, nil, false
	}
	return fa.LHS, fa.RHS, true
}

func (p *parser) parseRef() (*Ref, error) {
	t, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	r := &Ref{Name: t.Text, Pos: t.Pos}
	for p.cur().Kind == LBracket {
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		r.Index = append(r.Index, e)
	}
	return r, nil
}

// ---- Expressions ----
//
// Precedence (low to high), following the yacc grammar of Appendix A.2:
//   1: ||
//   2: &&
//   3: == !=
//   4: <= >= < >
//   5: + - ~d ~t ~w @ ~a
//   6: / * %
//   7: (+) (.)
//   8: **
//   9: unary ! ~b ~s ~r ~f ~h ~l ++ -- -  and postfix ++ --

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(1) }

type binLevel struct {
	kinds map[Kind]BinaryOp
}

var binLevels = []binLevel{
	{map[Kind]BinaryOp{LOr: BLOr}},
	{map[Kind]BinaryOp{LAnd: BLAnd}},
	{map[Kind]BinaryOp{EqEq: BEq, Neq: BNeq}},
	{map[Kind]BinaryOp{Leq: BLeq, Geq: BGeq, Lt: BLt, Gt: BGt}},
	{map[Kind]BinaryOp{Plus: BOr, Minus: BMinus, DelayOp: BDelay, TriOp: BTri, WireOrOp: BWireOr, At: BAt}},
	{map[Kind]BinaryOp{Slash: BDiv, Star: BAnd, Pct: BMod}},
	{map[Kind]BinaryOp{Xor: BXor, Xnor: BXnor}},
	{map[Kind]BinaryOp{Pow: BPow}},
}

func (p *parser) parseBin(level int) (Expr, error) {
	if level > len(binLevels) {
		return p.parseUnary()
	}
	lv := binLevels[level-1]
	x, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		// ~a has the precedence of level 5 and is parsed structurally:
		// X ~a ( value/cond, ... ).
		if level == 5 && t.Kind == AsyncOp {
			p.advance()
			items, err := p.parseAsyncList()
			if err != nil {
				return nil, err
			}
			x = &Async{X: x, Items: items, Pos: t.Pos}
			continue
		}
		op, ok := lv.kinds[t.Kind]
		if !ok {
			return x, nil
		}
		p.advance()
		y, err := p.parseBin(level + 1)
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op, X: x, Y: y, Pos: t.Pos}
	}
}

// parseAsyncList parses "( value/cond {, value/cond} )". The value is a
// unary expression (typically the constant 0 or 1); the condition is a
// full expression (parenthesize conditions that contain '/').
func (p *parser) parseAsyncList() ([]AsyncItem, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var items []AsyncItem
	for {
		val, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Slash); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, AsyncItem{Value: val, Cond: cond})
		if !p.accept(Comma) {
			break
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	return items, nil
}

var prefixUnary = map[Kind]UnaryOp{
	Bang: UNot, BufOp: UBuf, SchmittOp: USchmitt,
	RiseOp: URise, FallOp: UFall, HighOp: UHigh, LowOp: ULow,
	Minus: UNeg, Inc: UPreInc, Dec: UPreDec,
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if op, ok := prefixUnary[t.Kind]; ok {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x, Pos: t.Pos}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case Inc:
			pos := p.advance().Pos
			x = &Unary{Op: UPostInc, X: x, Pos: pos}
		case Dec:
			pos := p.advance().Pos
			x = &Unary{Op: UPostDec, X: x, Pos: pos}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case IDENT:
		return p.parseRef()
	case INT:
		p.advance()
		return &IntLit{V: t.Int, Pos: t.Pos}, nil
	case LParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Pos, "unexpected %s in expression", t)
}

// Errf is exported for sibling packages that report IIF-positioned errors.
func Errf(pos Pos, format string, args ...any) error {
	return errf(pos, format, args...)
}
