package iif

import (
	"fmt"
	"strings"
	"testing"
)

// testEnv instantiates EvalEnv[T] the way the real consumers do: a name
// table, optional mutation, configurable short-circuiting.
type testEnv[T Num] struct {
	vars    map[string]T
	mutable bool
	sc      bool
}

func (e *testEnv[T]) Lookup(r *Ref) (T, error) {
	if v, ok := e.vars[r.Name]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("unknown name %q", r.Name)
}

func (e *testEnv[T]) Mutate(pos Pos, op UnaryOp, operand Expr) (T, error) {
	if !e.mutable {
		return 0, Errf(pos, "mutation rejected")
	}
	r, ok := operand.(*Ref)
	if !ok {
		return 0, Errf(pos, "%s needs a variable operand", op)
	}
	cur, err := e.Lookup(r)
	if err != nil {
		return 0, err
	}
	delta := T(1)
	if op == UPreDec || op == UPostDec {
		delta = -1
	}
	e.vars[r.Name] = cur + delta
	if op == UPostInc || op == UPostDec {
		return cur, nil
	}
	return cur + delta, nil
}

func (e *testEnv[T]) BadUnary(pos Pos, op UnaryOp) error {
	return Errf(pos, "bad unary %s", op)
}

func (e *testEnv[T]) BadBinary(pos Pos, op BinaryOp) error {
	return Errf(pos, "bad binary %s", op)
}

func (e *testEnv[T]) BadExpr(x Expr) error {
	return Errf(ExprPos(x), "bad expr %T", x)
}

func (e *testEnv[T]) ShortCircuit() bool { return e.sc }

// TestEvalExprDifferential pins, expression by expression, where the two
// numeric domains agree and where they deliberately diverge — the
// divergences are exactly the historical behaviors of expand.evalInt
// (C ints) and icdb.evalAttr (float64 attributes), now both served by
// this one core.
func TestEvalExprDifferential(t *testing.T) {
	cases := []struct {
		src string
		// wantInt / wantFloat are the expected values; errInt / errFloat
		// expect an error containing the substring instead.
		wantInt  int
		errInt   string
		wantF    float64
		errFloat string
	}{
		// Agreeing arithmetic.
		{src: "1+2*3", wantInt: 7, wantF: 7},
		{src: "10-4", wantInt: 6, wantF: 6},
		{src: "-(3)", wantInt: -3, wantF: -3},
		{src: "!0", wantInt: 1, wantF: 1},
		{src: "!7", wantInt: 0, wantF: 0},
		{src: "3 == 3", wantInt: 1, wantF: 1},
		{src: "3 < 2", wantInt: 0, wantF: 0},
		{src: "2 ** 10", wantInt: 1024, wantF: 1024},
		{src: "1 && 2", wantInt: 1, wantF: 1},
		{src: "0 || 0", wantInt: 0, wantF: 0},

		// Division: C ints truncate, floats do not.
		{src: "7/2", wantInt: 3, wantF: 3.5},
		{src: "-7/2", wantInt: -3, wantF: -3.5},

		// Modulo: Go int % vs math.Mod (same sign rules, float result).
		{src: "7%2", wantInt: 1, wantF: 1},
		{src: "-7%2", wantInt: -1, wantF: -1},

		// Power: ints reject negative exponents (no integer result
		// exists), floats take math.Pow's 0.5.
		{src: "2 ** (0-1)", errInt: "negative exponent", wantF: 0.5},

		// Zero divisors are errors in both domains (math.Mod/Inf would
		// otherwise silently poison a cost estimate).
		{src: "1/0", errInt: "division by zero", errFloat: "division by zero"},
		{src: "1%0", errInt: "modulo by zero", errFloat: "modulo by zero"},

		// Both domains short-circuit here (sc: true below), so the
		// poisoned right side is never evaluated.
		{src: "0 && 1/0", wantInt: 0, wantF: 0},
		{src: "1 || 1/0", wantInt: 1, wantF: 1},

		// Name resolution is the env's.
		{src: "n + 1", wantInt: 42, wantF: 42},
	}
	for _, tc := range cases {
		e, err := ParseExpr(tc.src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", tc.src, err)
		}
		iv, ierr := EvalExpr[int](e, &testEnv[int]{vars: map[string]int{"n": 41}, sc: true})
		fv, ferr := EvalExpr[float64](e, &testEnv[float64]{vars: map[string]float64{"n": 41}, sc: true})
		if tc.errInt != "" {
			if ierr == nil || !strings.Contains(ierr.Error(), tc.errInt) {
				t.Errorf("%q int: err = %v, want %q", tc.src, ierr, tc.errInt)
			}
		} else if ierr != nil || iv != tc.wantInt {
			t.Errorf("%q int = %d, %v; want %d", tc.src, iv, ierr, tc.wantInt)
		}
		if tc.errFloat != "" {
			if ferr == nil || !strings.Contains(ferr.Error(), tc.errFloat) {
				t.Errorf("%q float: err = %v, want %q", tc.src, ferr, tc.errFloat)
			}
		} else if ferr != nil || fv != tc.wantF {
			t.Errorf("%q float = %g, %v; want %g", tc.src, fv, ferr, tc.wantF)
		}
	}
}

// TestEvalExprShortCircuitOff pins the speculative-fold mode: with
// short-circuiting disabled the right side of &&/|| is always evaluated,
// so its errors surface even when the left side decides the value.
func TestEvalExprShortCircuitOff(t *testing.T) {
	env := &testEnv[int]{sc: false}
	for _, src := range []string{"0 && bogus", "1 || bogus"} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := EvalExpr[int](e, env); err == nil || !strings.Contains(err.Error(), "unknown name") {
			t.Errorf("%q with short-circuit off: err = %v, want unknown name", src, err)
		}
	}
	// And the logical result is still correct when the right side is fine.
	e, _ := ParseExpr("0 && 5")
	if v, err := EvalExpr[int](e, env); err != nil || v != 0 {
		t.Errorf("0 && 5 = %d, %v; want 0", v, err)
	}
	e, _ = ParseExpr("2 || 0")
	if v, err := EvalExpr[int](e, env); err != nil || v != 1 {
		t.Errorf("2 || 0 = %d, %v; want 1", v, err)
	}
}

// TestEvalExprMutation exercises the Mutate delegation: pre/post
// increment/decrement values and the env-owned rejection.
func TestEvalExprMutation(t *testing.T) {
	env := &testEnv[int]{vars: map[string]int{"i": 5}, mutable: true, sc: true}
	for _, tc := range []struct {
		src, after string
		want       int
	}{
		{"++i", "", 6},
		{"i++", "", 7}, // yields 6, leaves 7
		{"--i", "", 6},
		{"i--", "", 5},
	} {
		e, err := ParseExpr(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := EvalExpr[int](e, env); err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		if env.vars["i"] != tc.want {
			t.Errorf("after %q i = %d, want %d", tc.src, env.vars["i"], tc.want)
		}
	}
	e, _ := ParseExpr("++i")
	if _, err := EvalExpr[int](e, &testEnv[int]{vars: map[string]int{"i": 0}}); err == nil ||
		!strings.Contains(err.Error(), "mutation rejected") {
		t.Errorf("immutable env: err = %v, want mutation rejected", err)
	}
}

// TestEvalExprBadOpDelegation checks that out-of-domain operators and
// expression forms produce the environment's diagnostics.
func TestEvalExprBadOpDelegation(t *testing.T) {
	env := &testEnv[int]{sc: true}
	for src, want := range map[string]string{
		"~b 1":      "bad unary ~b",
		"1 (+) 0":   "bad binary (+)",
		"1 ~d 2":    "bad binary ~d",
		"a ~a(1/b)": "bad expr", // Async form
	} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		if _, err := EvalExpr[int](e, env); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%q: err = %v, want %q", src, err, want)
		}
	}
}
