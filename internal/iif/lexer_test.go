package iif

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexOperators(t *testing.T) {
	src := "(+) (.) (+)= (.)= ++ -- ** += *= == != <= >= < > && || @ = : ; , [ ] { } ( ) + - * / % !"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		Xor, Xnor, InsXor, InsXnor, Inc, Dec, Pow, InsAdd, InsMul,
		EqEq, Neq, Leq, Geq, Lt, Gt, LAnd, LOr, At, Equals,
		Colon, Semicolon, Comma, LBracket, RBracket, LBrace, RBrace,
		LParen, RParen, Plus, Minus, Star, Slash, Pct, Bang, EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexTildeOps(t *testing.T) {
	toks, err := Lex("~a ~b ~s ~d ~t ~w ~f ~r ~h ~l")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{AsyncOp, BufOp, SchmittOp, DelayOp, TriOp, WireOrOp, FallOp, RiseOp, HighOp, LowOp, EOF}
	for i, k := range kinds(toks) {
		if k != want[i] {
			t.Errorf("token %d = %s, want %s", i, k, want[i])
		}
	}
}

func TestLexDirectivesAndCalls(t *testing.T) {
	toks, err := Lex("#if #else #for #c_line #cline #break #continue #myMacro")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{HashIf, HashElse, HashFor, HashCLine, HashCLine, HashBreak, HashContinue, HashCall, EOF}
	for i, k := range kinds(toks) {
		if k != want[i] {
			t.Errorf("token %d = %s, want %s", i, k, want[i])
		}
	}
	if toks[7].Text != "myMacro" {
		t.Errorf("call name = %q", toks[7].Text)
	}
}

func TestLexKeywordsUpperCaseOnly(t *testing.T) {
	toks, err := Lex("NAME name PARAMETER Inorder OUTORDER")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwName, IDENT, KwParameter, IDENT, KwOutorder, EOF}
	for i, k := range kinds(toks) {
		if k != want[i] {
			t.Errorf("token %d = %s, want %s", i, k, want[i])
		}
	}
}

func TestLexPositionsAndComments(t *testing.T) {
	src := "a /* comment\nspanning lines */ b\n  c12"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 19}) || toks[1].Text != "b" {
		t.Errorf("b at %v", toks[1].Pos)
	}
	if toks[2].Pos != (Pos{3, 3}) || toks[2].Text != "c12" {
		t.Errorf("c12 at %v %q", toks[2].Pos, toks[2].Text)
	}
	if toks[2].Pos.String() != "3:3" {
		t.Errorf("Pos.String = %q", toks[2].Pos.String())
	}
}

func TestLexInt(t *testing.T) {
	toks, err := Lex("42 007")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Int != 42 || toks[1].Int != 7 {
		t.Errorf("ints = %d %d", toks[0].Int, toks[1].Int)
	}
	if _, err := Lex("99999999999999999999999"); err == nil {
		t.Error("overflowing integer accepted")
	}
}

func TestLexErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"/* never closed", "unterminated comment"},
		{"~x", "unknown operator"},
		{"a & b", "unexpected '&'"},
		{"a | b", "unexpected '|'"},
		{"# 5", "'#' must be followed"},
		{"a $ b", "unexpected character"},
	}
	for _, tc := range cases {
		_, err := Lex(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Lex(%q) err = %v, want substring %q", tc.src, err, tc.want)
		}
	}
	var e *Error
	if err := Lex2Err("~x"); err != nil {
		if ok := errorsAs(err, &e); !ok || e.Pos.Line != 1 {
			t.Errorf("error carries no position: %v", err)
		}
	}
}

// Lex2Err returns the error from lexing src.
func Lex2Err(src string) error {
	_, err := Lex(src)
	return err
}

func errorsAs(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: IDENT, Text: "foo"}, "ident(foo)"},
		{Token{Kind: INT, Int: 9}, "int(9)"},
		{Token{Kind: HashCall, Text: "mac"}, "#mac"},
		{Token{Kind: Xor}, "(+)"},
	}
	for _, tc := range cases {
		if got := tc.tok.String(); got != tc.want {
			t.Errorf("Token.String = %q, want %q", got, tc.want)
		}
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind has empty String")
	}
}
