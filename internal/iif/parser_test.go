package iif

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// srcShifter is a small complete design exercising every declaration
// kind and statement form (modeled on the SHL0 example of Appendix A).
const srcShifter = `
NAME: shl0;
PARAMETER: size;
VARIABLE: i;
INORDER: D[size], shift_in, clk;
OUTORDER: Q[size];
PIIFVARIABLE: n[size];
SUBFUNCTION: helper;
SUBCOMPONENT: reg_d;
FUNCTIONS: SHL1;
{
  n[0] = shift_in;
  #for(i = 1; i < size; i++) {
    #if (i == 1) n[i] = D[0]; #else n[i] = D[i-1];
  }
  #c_line i = 0;
  #for(;;) {
    #if (i >= size) #break;
    #if (i == 2) { #c_line i = i + 1; #continue; }
    Q[i] = n[i] @ (~r clk);
    #c_line i = i + 1;
  }
  #helper(Q[0], n[0]);
}
`

func TestParseGoldenDesign(t *testing.T) {
	d, err := Parse(srcShifter)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "shl0" {
		t.Errorf("name = %q", d.Name)
	}
	if len(d.Params) != 1 || d.Params[0] != "size" {
		t.Errorf("params = %v", d.Params)
	}
	if len(d.Vars) != 1 || d.Vars[0] != "i" {
		t.Errorf("vars = %v", d.Vars)
	}
	if len(d.Inputs) != 3 || d.Inputs[0].String() != "D[size]" || d.Inputs[2].Name != "clk" {
		t.Errorf("inputs = %v", d.Inputs)
	}
	if len(d.Outputs) != 1 || len(d.Outputs[0].Dims) != 1 {
		t.Errorf("outputs = %v", d.Outputs)
	}
	if len(d.Internal) != 1 || d.Internal[0].Name != "n" {
		t.Errorf("internal = %v", d.Internal)
	}
	if len(d.SubFunctions) != 1 || d.SubFunctions[0] != "helper" {
		t.Errorf("subfunctions = %v", d.SubFunctions)
	}
	if len(d.SubComponents) != 1 || d.SubComponents[0] != "reg_d" {
		t.Errorf("subcomponents = %v", d.SubComponents)
	}
	if len(d.Functions) != 1 || d.Functions[0] != "SHL1" {
		t.Errorf("functions = %v", d.Functions)
	}
	if len(d.Body.Stmts) != 5 {
		t.Fatalf("body has %d statements", len(d.Body.Stmts))
	}
	if _, ok := d.Body.Stmts[0].(*Assign); !ok {
		t.Errorf("stmt 0 = %T", d.Body.Stmts[0])
	}
	loop, ok := d.Body.Stmts[1].(*For)
	if !ok {
		t.Fatalf("stmt 1 = %T", d.Body.Stmts[1])
	}
	if lhs, _, ok := ForAssign(loop.Init); !ok || lhs.Name != "i" {
		t.Errorf("for init = %v", loop.Init)
	}
	ifs, ok := loop.Body.(*Block).Stmts[0].(*If)
	if !ok || ifs.Else == nil {
		t.Errorf("nested #if/#else missing")
	}
	cl, ok := d.Body.Stmts[2].(*Assign)
	if !ok || !cl.CLine {
		t.Errorf("stmt 2 not a #c_line assign: %T", d.Body.Stmts[2])
	}
	empty, ok := d.Body.Stmts[3].(*For)
	if !ok || empty.Init != nil || empty.Cond != nil || empty.Step != nil {
		t.Errorf("empty #for header parsed wrong: %+v", empty)
	}
	call, ok := d.Body.Stmts[4].(*Call)
	if !ok || call.Name != "helper" || len(call.Args) != 2 {
		t.Errorf("call = %+v", call)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a + b * c", "(a+(b*c))"},
		{"a * b (+) c", "(a*(b(+)c))"},
		{"a (+) b ** c", "(a(+)(b**c))"},
		{"!a + b", "(!a+b)"},
		{"a + b - c", "((a+b)-c)"},
		{"a ~t b + c", "((a~tb)+c)"},
		{"a ~d 5 ~w b", "((a~d5)~wb)"},
		{"x @ ~r clk", "(x@~r clk)"},
		{"a == b && c != d", "((a==b)&&(c!=d))"},
		{"a < b || c >= d", "((a<b)||(c>=d))"},
		{"a <= b == c > d", "((a<=b)==(c>d))"},
		{"- a % b", "((- a)%b)"},
		{"i++ + --j", "(i+++(-- j))"},
		{"(a + b) * c", "((a+b)*c)"},
		{"a (.) b", "(a(.)b)"},
		{"~b x * ~s y", "(~b x*~s y)"},
		{"q @ ~f clk ~a (0/rst)", "((q@~f clk) ~a(0/rst))"},
		{"q @ ~h clk ~a (1/set, 0/rst*en)", "((q@~h clk) ~a(1/set,0/(rst*en)))"},
		{"M[i][j+1]", "M[i][(j+1)]"},
	}
	for _, tc := range cases {
		e, err := ParseExpr(tc.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", tc.src, err)
			continue
		}
		if got := ExprString(e); got != tc.want {
			t.Errorf("ParseExpr(%q) = %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, src := range []string{
		"", "a +", "(a", "a b", "a ~a 0/r", "a ~a (0 r)", "a ~a (0/r", "5 +", "+",
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) succeeded", src)
		}
	}
}

func TestParseDesignErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"{ }", "no NAME"},
		{"NAME: a; NAME: b; { }", "duplicate NAME"},
		{"NAME a; { }", "expected ':'"},
		{"NAME: 5; { }", "expected identifier"},
		{"NAME: top;", "expected {"},
		{"NAME: top; { a = 1; ", "unterminated block"},
		{"NAME: top; { a = 1; } extra", "unexpected"},
		{"NAME: top; { 5 = 1; }", "start of statement"},
		{"NAME: top; { a 1; }", "expected assignment operator"},
		{"NAME: top; { a = 1 }", "expected ;"},
		{"NAME: top; INORDER: a[; { }", "unexpected"},
		{"NAME: top; { #c_line x + 1; }", "expected assignment"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) err = %v, want substring %q", tc.src, err, tc.want)
		}
	}
}

func TestParseAggregateOps(t *testing.T) {
	d, err := Parse("NAME: agg; { a += x; b *= y; c (+)= z; e (.)= w; }")
	if err != nil {
		t.Fatal(err)
	}
	want := []AssignOp{OpAggOr, OpAggAnd, OpAggXor, OpAggXnor}
	for i, st := range d.Body.Stmts {
		a, ok := st.(*Assign)
		if !ok || a.Op != want[i] {
			t.Errorf("stmt %d: %v, want op %s", i, st, want[i])
		}
	}
	for _, op := range append(want, OpAssign) {
		if op.String() == "?=" {
			t.Errorf("op %d has no String", op)
		}
	}
	if AssignOp(99).String() != "?=" {
		t.Error("unknown AssignOp")
	}
}

// randomExpr builds a random printable expression tree of bounded depth.
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		if r.Intn(2) == 0 {
			return &IntLit{V: r.Intn(10)}
		}
		names := []string{"a", "b", "c", "sig"}
		ref := &Ref{Name: names[r.Intn(len(names))]}
		for r.Intn(4) == 0 {
			ref.Index = append(ref.Index, randomExpr(r, 0))
		}
		return ref
	}
	switch r.Intn(8) {
	case 0:
		ops := []UnaryOp{UNot, UNeg, UBuf, USchmitt, URise, UFall, UHigh, ULow}
		return &Unary{Op: ops[r.Intn(len(ops))], X: randomExpr(r, depth-1)}
	case 1:
		items := []AsyncItem{}
		for i := 0; i <= r.Intn(2); i++ {
			items = append(items, AsyncItem{
				Value: &IntLit{V: r.Intn(2)},
				Cond:  randomExpr(r, depth-1),
			})
		}
		return &Async{X: randomExpr(r, depth-1), Items: items}
	default:
		ops := []BinaryOp{
			BOr, BAnd, BXor, BXnor, BMinus, BDiv, BMod, BPow, BAt,
			BDelay, BTri, BWireOr, BEq, BNeq, BLt, BGt, BLeq, BGeq, BLAnd, BLOr,
		}
		return &Binary{
			Op: ops[r.Intn(len(ops))],
			X:  randomExpr(r, depth-1),
			Y:  randomExpr(r, depth-1),
		}
	}
}

// TestExprRoundTripProperty checks that formatting an expression and
// reparsing it yields the same expression (up to formatting).
func TestExprRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 1+r.Intn(3))
		text := ExprString(e)
		re, err := ParseExpr(text)
		if err != nil {
			t.Logf("seed %d: %q does not reparse: %v", seed, text, err)
			return false
		}
		if got := ExprString(re); got != text {
			t.Logf("seed %d: %q reparses as %q", seed, text, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDesignRoundTrip formats a design's expressions and reparses the
// whole design, mirroring the genus property-test style.
func TestDesignRoundTrip(t *testing.T) {
	d1, err := Parse(srcShifter)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(srcShifter)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic parse: same source yields identical declaration
	// shapes and statement counts.
	if d1.Name != d2.Name || len(d1.Body.Stmts) != len(d2.Body.Stmts) {
		t.Error("non-deterministic parse")
	}
	if d1.Inputs[0].String() != d2.Inputs[0].String() {
		t.Error("signal decl formatting unstable")
	}
}
