package iif

import "fmt"

// Kind identifies a lexical token class of the IIF language (Appendix A.2
// of the paper).
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT

	// Declaration keywords.
	KwName
	KwParameter
	KwVariable
	KwInorder
	KwOutorder
	KwPIIFVariable
	KwSubfunction
	KwSubcomponent
	KwFunctions

	// Punctuation.
	Colon     // :
	Semicolon // ;
	Comma     // ,
	LParen    // (
	RParen    // )
	LBracket  // [
	RBracket  // ]
	LBrace    // {
	RBrace    // }

	// Boolean / arithmetic operators.
	Plus   // + (boolean OR / C addition)
	Star   // * (boolean AND / C multiplication)
	Bang   // ! (boolean NOT / C logical not)
	Xor    // (+)
	Xnor   // (.)
	Minus  // -
	Slash  // / (C division; async value/condition separator)
	Pct    // %
	Pow    // **
	Equals // =
	Inc    // ++
	Dec    // --

	// Aggregate assignment operators.
	InsAdd  // +=
	InsMul  // *=
	InsXor  // (+)=
	InsXnor // (.)=

	// Comparison / logical (C expressions).
	EqEq // ==
	Neq  // !=
	Leq  // <=
	Geq  // >=
	Lt   // <
	Gt   // >
	LAnd // &&
	LOr  // ||

	// IIF hardware operators.
	At        // @ (synchronous clocking)
	AsyncOp   // ~a
	BufOp     // ~b
	SchmittOp // ~s
	DelayOp   // ~d
	TriOp     // ~t
	WireOrOp  // ~w
	FallOp    // ~f
	RiseOp    // ~r
	HighOp    // ~h
	LowOp     // ~l

	// Preprocessor-style directives.
	HashIf       // #if
	HashElse     // #else
	HashFor      // #for
	HashCLine    // #c_line / #cline
	HashBreak    // #break
	HashContinue // #continue
	HashCall     // #IDENT — macro (subfunction) invocation
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INT: "integer",
	KwName: "NAME", KwParameter: "PARAMETER", KwVariable: "VARIABLE",
	KwInorder: "INORDER", KwOutorder: "OUTORDER", KwPIIFVariable: "PIIFVARIABLE",
	KwSubfunction: "SUBFUNCTION", KwSubcomponent: "SUBCOMPONENT", KwFunctions: "FUNCTIONS",
	Colon: ":", Semicolon: ";", Comma: ",",
	LParen: "(", RParen: ")", LBracket: "[", RBracket: "]", LBrace: "{", RBrace: "}",
	Plus: "+", Star: "*", Bang: "!", Xor: "(+)", Xnor: "(.)",
	Minus: "-", Slash: "/", Pct: "%", Pow: "**", Equals: "=",
	Inc: "++", Dec: "--",
	InsAdd: "+=", InsMul: "*=", InsXor: "(+)=", InsXnor: "(.)=",
	EqEq: "==", Neq: "!=", Leq: "<=", Geq: ">=", Lt: "<", Gt: ">",
	LAnd: "&&", LOr: "||",
	At: "@", AsyncOp: "~a", BufOp: "~b", SchmittOp: "~s", DelayOp: "~d",
	TriOp: "~t", WireOrOp: "~w", FallOp: "~f", RiseOp: "~r", HighOp: "~h", LowOp: "~l",
	HashIf: "#if", HashElse: "#else", HashFor: "#for", HashCLine: "#c_line",
	HashBreak: "#break", HashContinue: "#continue", HashCall: "#call",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string // identifier name, integer literal text, or macro name for HashCall
	Int  int    // value when Kind == INT
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("ident(%s)", t.Text)
	case INT:
		return fmt.Sprintf("int(%d)", t.Int)
	case HashCall:
		return fmt.Sprintf("#%s", t.Text)
	default:
		return t.Kind.String()
	}
}
