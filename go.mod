module icdb

go 1.24
